// Command experiments regenerates every table and figure of the paper's
// evaluation section (§5) as text tables:
//
//	-table1   machine configuration
//	-fig5     speedups over in-order: Runahead, Multipass, SLTP, iCFP
//	-table2   diagnostics: miss rates, D$/L2 MLP, iCFP rally rate
//	-fig6     L2 hit-latency sensitivity (equake + SPEC geomean)
//	-fig7     iCFP feature build from SLTP
//	-fig8     store-buffer design comparison
//	-hops     §3.2 chained store buffer hop statistics and chain-table size
//	-poison   §3.4 poison vector width study (1 vs 8 bits)
//	-area     §5.3 area overheads
//	-all      everything above
//
// Runs are deterministic; -n and -warm control sample sizes (the paper
// samples 1M-instruction windows after 4M-instruction warmups; the
// defaults here are scaled down to keep the full suite to a few minutes).
package main

import (
	"flag"
	"fmt"
	"os"

	"icfp/internal/area"
	"icfp/internal/icfp"
	"icfp/internal/inorder"
	"icfp/internal/ooo"
	"icfp/internal/pipeline"
	"icfp/internal/sim"
	"icfp/internal/stats"
	"icfp/internal/workload"
)

var (
	flagTable1 = flag.Bool("table1", false, "print the machine configuration")
	flagFig5   = flag.Bool("fig5", false, "speedups over in-order (Figure 5)")
	flagTable2 = flag.Bool("table2", false, "benchmark diagnostics (Table 2)")
	flagFig6   = flag.Bool("fig6", false, "L2 latency sensitivity (Figure 6)")
	flagFig7   = flag.Bool("fig7", false, "iCFP feature build (Figure 7)")
	flagFig8   = flag.Bool("fig8", false, "store buffer designs (Figure 8)")
	flagHops   = flag.Bool("hops", false, "chained store buffer hops (§3.2)")
	flagPoison = flag.Bool("poison", false, "poison vector width (§3.4)")
	flagArea   = flag.Bool("area", false, "area overheads (§5.3)")
	flagOOO    = flag.Bool("ooo", false, "out-of-order comparison (§5.3)")
	flagAblate = flag.Bool("ablate", false, "structure-size ablations (DESIGN.md)")
	flagAll    = flag.Bool("all", false, "run every experiment")
	flagN      = flag.Int("n", 400_000, "timed instructions per sample")
	flagWarm   = flag.Int("warm", 150_000, "warmup instructions per sample")
)

func main() {
	flag.Parse()
	cfg := sim.DefaultConfig()
	cfg.WarmupInsts = *flagWarm

	any := false
	run := func(on bool, f func(pipeline.Config)) {
		if on || *flagAll {
			f(cfg)
			any = true
		}
	}
	run(*flagTable1, table1)
	run(*flagFig5, figure5)
	run(*flagTable2, table2)
	run(*flagFig6, figure6)
	run(*flagFig7, figure7)
	run(*flagFig8, figure8)
	run(*flagHops, hops)
	run(*flagPoison, poison)
	run(*flagArea, areaOverheads)
	run(*flagOOO, oooComparison)
	run(*flagAblate, ablations)
	if !any {
		flag.Usage()
		os.Exit(2)
	}
}

func table1(cfg pipeline.Config) {
	fmt.Println("== Table 1: simulated processor configuration ==")
	h := cfg.Hier
	fmt.Printf("Pipeline   %d-wide, %d front-end stages + 1 ALU + %d D$ + 1 reg-write; %d int ports, %d fp/ls/br port\n",
		cfg.Width, cfg.FrontDepth, cfg.DCachePipe, cfg.IntPorts, cfg.MemFPBrPorts)
	fmt.Printf("Bpred      PPM %d-table (hist %v), %d-entry BTB, %d-entry RAS\n",
		len(cfg.Bpred.HistLens), cfg.Bpred.HistLens, 1<<cfg.Bpred.BTBBits, cfg.Bpred.RASEntries)
	fmt.Printf("I$/D$      %d KB, %d-way, %d B lines, %d-entry victim buffers\n",
		h.L1D.SizeBytes>>10, h.L1D.Assoc, h.L1D.LineBytes, h.L1D.VictimEntries)
	fmt.Printf("L2         %d MB, %d-way, %d B lines, %d-cycle hit, %d-entry victim buffer\n",
		h.L2.SizeBytes>>20, h.L2.Assoc, h.L2.LineBytes, h.L2HitLat, h.L2.VictimEntries)
	fmt.Printf("Memory     %d-cycle latency, %d cycles per %d B chunk, %d MSHRs\n",
		h.MemLat, h.MemChunkLat, h.MemChunkBytes, h.NumMSHRs)
	fmt.Printf("Prefetch   %d stream buffers x %d blocks\n", h.StreamBufs, h.StreamBufBlocks)
	fmt.Printf("iCFP       %d-entry chained SB, %d-entry chain table, %d-entry slice buffer, %d-bit poison vectors\n",
		cfg.ChainedSBEntries, cfg.ChainTableEntries, cfg.SliceEntries, cfg.PoisonBits)
	fmt.Printf("Others     %d-entry runahead cache, %d-entry SRL, %d-entry result buffer, %d-entry store buffer\n\n",
		cfg.RunaheadCache, cfg.SRLEntries, cfg.ResultBufEntries, cfg.StoreBufEntries)
}

// groupGeo prints per-benchmark speedups and the geomean for a benchmark
// group label.
func geoRow(vals map[string]float64, names []string) float64 {
	ratios := make([]float64, 0, len(names))
	for _, n := range names {
		ratios = append(ratios, 1+vals[n]/100)
	}
	return (stats.GeoMean(ratios) - 1) * 100
}

func figure5(cfg pipeline.Config) {
	fmt.Println("== Figure 5: % speedup over in-order ==")
	fmt.Printf("%-9s %9s %9s %9s %9s\n", "bench", "Runahead", "Multipass", "SLTP", "iCFP")
	per := map[sim.Model]map[string]float64{}
	for _, m := range []sim.Model{sim.Runahead, sim.Multipass, sim.SLTP, sim.ICFP} {
		per[m] = map[string]float64{}
	}
	for _, name := range workload.AllSPECNames {
		base := sim.RunSPEC(sim.InOrder, cfg, name, *flagN)
		for _, m := range []sim.Model{sim.Runahead, sim.Multipass, sim.SLTP, sim.ICFP} {
			r := sim.RunSPEC(m, cfg, name, *flagN)
			per[m][name] = r.SpeedupOver(base)
		}
		fmt.Printf("%-9s %+8.1f%% %+8.1f%% %+8.1f%% %+8.1f%%\n", name,
			per[sim.Runahead][name], per[sim.Multipass][name], per[sim.SLTP][name], per[sim.ICFP][name])
	}
	for _, grp := range []struct {
		label string
		names []string
	}{
		{"SPECfp", workload.SPECfpNames},
		{"SPECint", workload.SPECintNames},
		{"SPEC", workload.AllSPECNames},
	} {
		fmt.Printf("%-9s %+8.1f%% %+8.1f%% %+8.1f%% %+8.1f%%   (geomean)\n", grp.label,
			geoRow(per[sim.Runahead], grp.names), geoRow(per[sim.Multipass], grp.names),
			geoRow(per[sim.SLTP], grp.names), geoRow(per[sim.ICFP], grp.names))
	}
	fmt.Println("paper geomeans: Runahead 11%, Multipass 11%, SLTP 9%, iCFP 16%")
	fmt.Println()
}

func table2(cfg pipeline.Config) {
	fmt.Println("== Table 2: diagnostics (miss/KI from the in-order baseline) ==")
	fmt.Printf("%-9s %6s %6s | %6s %6s %6s | %6s %6s %6s | %8s\n",
		"bench", "D$/KI", "L2/KI", "dMLPiO", "dMLPra", "dMLPic", "l2iO", "l2ra", "l2ic", "rally/KI")
	for _, name := range workload.AllSPECNames {
		io := sim.RunSPEC(sim.InOrder, cfg, name, *flagN)
		ra := sim.RunSPEC(sim.Runahead, cfg, name, *flagN)
		ic := sim.RunSPEC(sim.ICFP, cfg, name, *flagN)
		fmt.Printf("%-9s %6.1f %6.1f | %6.1f %6.1f %6.1f | %6.1f %6.1f %6.1f | %8.0f\n",
			name, io.DCacheMissPerKI, io.L2MissPerKI,
			io.DCacheMLP, ra.DCacheMLP, ic.DCacheMLP,
			io.L2MLP, ra.L2MLP, ic.L2MLP, ic.RallyPerKI)
	}
	fmt.Println()
}

func figure6(cfg pipeline.Config) {
	fmt.Println("== Figure 6: % speedup over in-order vs L2 hit latency ==")
	lats := []int{10, 20, 30, 40, 50}
	machines := sim.Figure6Machines()[1:] // skip the in-order baseline row

	fmt.Println("-- equake --")
	fmt.Printf("%-18s", "config")
	for _, l := range lats {
		fmt.Printf(" %7d", l)
	}
	fmt.Println()
	for _, m := range machines {
		sp := sim.SweepL2Latency(m.Machine, cfg, "equake", *flagN, lats)
		fmt.Printf("%-18s", m.Label)
		for _, v := range sp {
			fmt.Printf(" %+6.1f%%", v)
		}
		fmt.Println()
	}

	fmt.Println("-- SPEC geomean --")
	fmt.Printf("%-18s", "config")
	for _, l := range lats {
		fmt.Printf(" %7d", l)
	}
	fmt.Println()
	n := *flagN / 2 // the full-suite sweep is the heaviest experiment
	for _, m := range machines {
		fmt.Printf("%-18s", m.Label)
		for _, lat := range lats {
			ratios := make([]float64, 0, len(workload.AllSPECNames))
			for _, name := range workload.AllSPECNames {
				c := cfg
				c.Hier.L2HitLat = lat
				base := inorder.New(c).Run(workload.SPEC(name, c.WarmupInsts+n))
				r := m.Machine(c).Run(workload.SPEC(name, c.WarmupInsts+n))
				ratios = append(ratios, float64(base.Cycles)/float64(r.Cycles))
			}
			fmt.Printf(" %+6.1f%%", (stats.GeoMean(ratios)-1)*100)
		}
		fmt.Println()
	}
	fmt.Println()
}

// figure7Names are the benchmarks the paper shows in the feature build.
var figure7Names = []string{"ammp", "applu", "art", "equake", "swim", "bzip2", "gap", "gzip", "mcf", "vpr"}

func figure7(cfg pipeline.Config) {
	fmt.Println("== Figure 7: iCFP feature build, % speedup over in-order ==")
	builds := sim.FeatureBuildConfigs()
	fmt.Printf("%-9s", "bench")
	for i := range builds {
		fmt.Printf("  bar%d   ", i+1)
	}
	fmt.Println()
	for i, b := range builds {
		fmt.Printf("bar%d = %s\n", i+1, b.Label)
	}
	for _, name := range figure7Names {
		base := sim.RunSPEC(sim.InOrder, cfg, name, *flagN)
		fmt.Printf("%-9s", name)
		for _, b := range builds {
			w := workload.SPEC(name, cfg.WarmupInsts+*flagN)
			r := b.Make(cfg).Run(w)
			fmt.Printf(" %+7.1f%%", r.SpeedupOver(base))
		}
		fmt.Println()
	}
	fmt.Println()
}

// figure8Names are the benchmarks the paper shows for store buffers.
var figure8Names = []string{"applu", "equake", "swim", "bzip2", "gzip", "vpr"}

func figure8(cfg pipeline.Config) {
	fmt.Println("== Figure 8: store buffer designs, % speedup over in-order ==")
	fmt.Printf("%-9s %12s %12s %12s\n", "bench", "limited", "chained", "ideal")
	for _, name := range figure8Names {
		base := sim.RunSPEC(sim.InOrder, cfg, name, *flagN)
		fmt.Printf("%-9s", name)
		for _, sb := range sim.StoreBufferConfigs() {
			m := icfp.NewWithOptions(cfg, pipeline.TriggerAll, sb.Mode)
			r := m.Run(workload.SPEC(name, cfg.WarmupInsts+*flagN))
			fmt.Printf(" %+11.1f%%", r.SpeedupOver(base))
		}
		fmt.Println()
	}
	fmt.Println()
}

func hops(cfg pipeline.Config) {
	fmt.Println("== §3.2: chained store buffer excess hops per load ==")
	fmt.Printf("%-9s %12s %12s | %12s\n", "bench", "hops(512ct)", ">=5 hops", "hops(64ct)")
	for _, name := range workload.AllSPECNames {
		r := sim.RunSPEC(sim.ICFP, cfg, name, *flagN)
		small := cfg
		small.ChainTableEntries = 64
		r64 := sim.RunSPEC(sim.ICFP, small, name, *flagN)
		fmt.Printf("%-9s %12.3f %11.1f%% | %12.3f\n", name, r.SBExtraHops, r.SBHopsAtLeast*100, r64.SBExtraHops)
	}
	fmt.Println("paper: < 0.5 for all benchmarks, < 0.05 for most")
	fmt.Println()
}

func poison(cfg pipeline.Config) {
	fmt.Println("== §3.4: poison vector width (speedup of 8-bit over 1-bit) ==")
	ratios := []float64{}
	for _, name := range workload.AllSPECNames {
		one := cfg
		one.PoisonBits = 1
		r1 := sim.RunSPEC(sim.ICFP, one, name, *flagN)
		r8 := sim.RunSPEC(sim.ICFP, cfg, name, *flagN)
		sp := r8.SpeedupOver(r1)
		ratios = append(ratios, 1+sp/100)
		fmt.Printf("%-9s %+6.1f%%\n", name, sp)
	}
	fmt.Printf("%-9s %+6.1f%%   (paper: +1.5%% average, +6%% on mcf)\n\n", "geomean", (stats.GeoMean(ratios)-1)*100)
}

func areaOverheads(pipeline.Config) {
	fmt.Println("== §5.3: area overheads (45 nm) ==")
	for _, d := range area.AllDesigns() {
		fmt.Printf("%-10s %.3f mm²  (paper %.2f)\n", d.Name, d.Total(), area.PaperMM2[d.Name])
		for _, s := range d.Structures {
			fmt.Printf("    %-28s %.4f\n", s.Name, s.MM2())
		}
	}
	fmt.Println()
}

// oooNames is a representative subset for the §5.3 out-of-order numbers
// (the full suite is available via the ooo package tests).
func oooComparison(cfg pipeline.Config) {
	fmt.Println("== §5.3: 2-way out-of-order and out-of-order CFP vs in-order ==")
	ocfg := ooo.DefaultConfig()
	ocfg.Config = cfg
	ccfg := ocfg
	ccfg.CFP = true
	var ro, rc []float64
	for _, name := range workload.AllSPECNames {
		io := inorder.New(cfg).Run(workload.SPEC(name, cfg.WarmupInsts+*flagN))
		o := ooo.New(ocfg).Run(workload.SPEC(name, cfg.WarmupInsts+*flagN))
		c := ooo.New(ccfg).Run(workload.SPEC(name, cfg.WarmupInsts+*flagN))
		fmt.Printf("%-9s ooo %+7.1f%%   ooo-cfp %+7.1f%%\n", name, o.SpeedupOver(io), c.SpeedupOver(io))
		ro = append(ro, float64(io.Cycles)/float64(o.Cycles))
		rc = append(rc, float64(io.Cycles)/float64(c.Cycles))
	}
	fmt.Printf("%-9s ooo %+7.1f%%   ooo-cfp %+7.1f%%   (geomean; paper: +68%% and +83%%)\n\n",
		"SPEC", (stats.GeoMean(ro)-1)*100, (stats.GeoMean(rc)-1)*100)
}

// ablations sweeps the structure sizes DESIGN.md calls out: slice buffer
// entries, chained store buffer entries, and poison vector width, on a
// dependent-miss workload (mcf) and a streaming one (swim).
func ablations(cfg pipeline.Config) {
	fmt.Println("== Ablations: iCFP structure sizing ==")
	names := []string{"mcf", "swim"}
	runICFP := func(c pipeline.Config, name string) float64 {
		base := sim.RunSPEC(sim.InOrder, c, name, *flagN)
		r := sim.RunSPEC(sim.ICFP, c, name, *flagN)
		return r.SpeedupOver(base)
	}

	fmt.Println("-- slice buffer entries --")
	for _, entries := range []int{32, 64, 128, 256} {
		c := cfg
		c.SliceEntries = entries
		fmt.Printf("%4d:", entries)
		for _, n := range names {
			fmt.Printf("  %s %+7.1f%%", n, runICFP(c, n))
		}
		fmt.Println()
	}

	fmt.Println("-- chained store buffer entries --")
	for _, entries := range []int{32, 64, 128, 256} {
		c := cfg
		c.ChainedSBEntries = entries
		fmt.Printf("%4d:", entries)
		for _, n := range names {
			fmt.Printf("  %s %+7.1f%%", n, runICFP(c, n))
		}
		fmt.Println()
	}

	fmt.Println("-- poison vector width (bits) --")
	for _, bits := range []int{1, 2, 4, 8} {
		c := cfg
		c.PoisonBits = bits
		fmt.Printf("%4d:", bits)
		for _, n := range names {
			fmt.Printf("  %s %+7.1f%%", n, runICFP(c, n))
		}
		fmt.Println()
	}
	fmt.Println()
}
