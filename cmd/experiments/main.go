// Command experiments regenerates every table and figure of the paper's
// evaluation section (§5) as text tables, driven by the experiment
// registry (internal/exp/registry):
//
//	-table1   machine configuration
//	-fig5     speedups over in-order: Runahead, Multipass, SLTP, iCFP
//	-table2   diagnostics: miss rates, D$/L2 MLP, iCFP rally rate
//	-fig6     L2 hit-latency sensitivity (equake + SPEC geomean)
//	-fig7     iCFP feature build from SLTP
//	-fig8     store-buffer design comparison
//	-hops     §3.2 chained store buffer hop statistics and chain-table size
//	-poison   §3.4 poison vector width study (1 vs 8 bits)
//	-area     §5.3 area overheads
//	-ooo      §5.3 out-of-order comparison
//	-ablate   structure-size ablations (DESIGN.md)
//	-all      everything above
//	-list     list the registry and exit
//
// Simulations run on a worker pool (-parallel N) with memoized sharing of
// common work, so the in-order baselines behind every speedup figure run
// once for the whole invocation, and every distinct workload is generated
// once and shared read-only across all machines; the output is
// byte-identical at every parallelism setting. -json FILE additionally
// exports every result set as machine-readable JSON.
//
// -cache-file FILE persists the memoization cache across invocations:
// results are loaded before the run and the merged cache is saved after
// it, so re-running (or running a different selection that shares work)
// skips simulations already on disk. Results are deterministic, so a
// cache built by an older simulator version must be deleted after any
// behavioural change — the golden tests pin when that happens.
//
// -cpuprofile/-memprofile write pprof profiles of the run, the
// performance workflow described in README.md ("Performance").
//
// Runs are deterministic; -n and -warm control sample sizes (the paper
// samples 1M-instruction windows after 4M-instruction warmups; the
// defaults here are scaled down to keep the full suite to a few minutes).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"icfp/internal/exp"
	"icfp/internal/exp/registry"
	"icfp/internal/sim"
)

var (
	flagAll        = flag.Bool("all", false, "run every experiment")
	flagList       = flag.Bool("list", false, "list the experiment registry and exit")
	flagN          = flag.Int("n", 400_000, "timed instructions per sample")
	flagWarm       = flag.Int("warm", 150_000, "warmup instructions per sample")
	flagParallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size (results are identical at any setting)")
	flagJSON       = flag.String("json", "", "also write every result set to this file as JSON")
	flagCacheFile  = flag.String("cache-file", "", "load/save the memoization cache from/to this JSON file")
	flagCPUProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	flagMemProfile = flag.String("memprofile", "", "write a pprof heap profile to this file")
)

// export is the -json file layout: the sample-size parameters and one
// result set per experiment run.
type export struct {
	N           int                       `json:"n"`
	Warmup      int                       `json:"warmup"`
	Experiments map[string]*exp.ResultSet `json:"experiments"`
}

func main() {
	all := registry.All()
	sel := make(map[string]*bool, len(all))
	for _, e := range all {
		sel[e.Name] = flag.Bool(e.Name, false, e.Desc)
	}
	flag.Parse()

	if *flagList {
		for _, e := range all {
			fmt.Printf("%-8s %s\n", e.Name, e.Desc)
		}
		return
	}

	var names []string
	for _, e := range all {
		if *flagAll || *sel[e.Name] {
			names = append(names, e.Name)
		}
	}
	if len(names) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	if *flagCPUProfile != "" {
		f, err := os.Create(*flagCPUProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	p := registry.Params{Cfg: sim.DefaultConfig(), N: *flagN}
	p.Cfg.WarmupInsts = *flagWarm

	cache := exp.NewCache()
	if *flagCacheFile != "" {
		if err := exp.LoadCacheFile(cache, *flagCacheFile); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	sets, err := registry.Report(os.Stdout, names, p, exp.Parallelism(*flagParallel), exp.WithCache(cache))
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if *flagCacheFile != "" {
		if err := exp.SaveCacheFile(cache, *flagCacheFile); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	if *flagMemProfile != "" {
		f, err := os.Create(*flagMemProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		runtime.GC()
		err = pprof.WriteHeapProfile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	if *flagJSON != "" {
		f, err := os.Create(*flagJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(export{N: *flagN, Warmup: *flagWarm, Experiments: sets})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}
