// Command experiments regenerates every table and figure of the paper's
// evaluation section (§5) as text tables, driven by the experiment
// registry (internal/exp/registry):
//
//	-table1   machine configuration
//	-fig5     speedups over in-order: Runahead, Multipass, SLTP, iCFP
//	-table2   diagnostics: miss rates, D$/L2 MLP, iCFP rally rate
//	-fig6     L2 hit-latency sensitivity (equake + SPEC geomean)
//	-fig7     iCFP feature build from SLTP
//	-fig8     store-buffer design comparison
//	-hops     §3.2 chained store buffer hop statistics and chain-table size
//	-poison   §3.4 poison vector width study (1 vs 8 bits)
//	-area     §5.3 area overheads
//	-ooo      §5.3 out-of-order comparison
//	-ablate   structure-size ablations (DESIGN.md)
//	-all      everything above
//	-fig5s    Figure 5 at 25x workload length via interval sampling,
//	          every cell ± its 95% CI (runs only when named, not via -all)
//	-list     list the registry and exit
//
// -sample runs every selected experiment's SPEC workloads under
// SMARTS-style interval sampling: detailed simulation is confined to
// stratified measurement windows (plus a detailed ramp ahead of each)
// with fast functional warming in between, cutting wall clock by >= 10x
// on paper-scale runs at <= 1% CPI error. Sampled results carry 95%
// confidence intervals, rendered as "value ± ci" wherever tables show
// per-run rates. The policy defaults to registry.DefaultSampling (one
// window per twelfth of the run, 2% of each stratum measured, a ramp of
// three windows); -sample-interval, -sample-period, -sample-warmup,
// -sample-ramp and -sample-seed override individual knobs. Full-mode
// output is byte-identical to a build without the sampling harness.
//
// Experiments are declarative (internal/spec): every entry above is a
// serializable spec.Suite of (machine, workload) jobs.
//
//	-describe <name>   emit the named experiment as suite JSON and exit
//	-spec <file>       run a suite from JSON ("-" reads stdin)
//
// A described suite run back through -spec renders byte-identically to
// running the experiment directly, and user-authored suites (see
// examples/customsuite and the README's "Defining your own experiments")
// can name any machine, workload, and sweep the simulator supports —
// no Go required. Decoding is strict: unknown fields and out-of-range
// values fail with actionable errors.
//
// Simulations run on a worker pool (-parallel N) with memoized sharing of
// common work, so the in-order baselines behind every speedup figure run
// once for the whole invocation, and every distinct workload is generated
// once and shared read-only across all machines; the output is
// byte-identical at every parallelism setting. -json FILE additionally
// exports every result set as machine-readable JSON.
//
// -workers N shards the simulations across N subprocess copies of this
// binary (internal/dist): the deduplicated job plan is dispatched in
// work-stealing batches over a length-delimited JSON protocol on each
// worker's stdin/stdout, completed results stream back into the shared
// cache as they finish, and the report is rendered locally from the warm
// cache — so output is byte-identical to a single-process run at any
// worker count, and a crashed worker's batch is reassigned to the
// survivors. Batches are sized at dispatch time by a per-key cost model
// (seeded from each spec's workload length and model class, refined
// online from the wall times workers report), so cheap keys batch large
// and expensive stragglers ship alone; they carry self-describing specs,
// so workers need no matching job table. The hidden -worker-stdio flag
// is the worker side of that protocol; cmd/expd speaks the same protocol
// over TCP — with optional TLS and token auth, elastic worker join/leave
// included — for multi-host runs (see docs/ARCHITECTURE.md and
// docs/OPERATIONS.md).
//
// -server URL submits the selected experiments (or the -spec suite) to
// a running expq simulation daemon instead of simulating locally: the
// daemon answers from its persistent result store, simulates only
// genuinely new work, and streams back the rendered report —
// byte-identical to the local run at any fleet shape.
// -server-token/-server-tls-ca/-server-tls-name authenticate the
// connection; execution flags (-workers, -cache-file, -json,
// -run-summary, profiling) conflict with -server, since the daemon owns
// execution. See docs/OPERATIONS.md, "Running expq".
//
// -cache-file FILE persists the memoization cache across invocations:
// results are loaded before the run and the merged cache is saved after
// it, so re-running (or running a different selection that shares work)
// skips simulations already on disk. Cache entries are keyed by
// canonical machine/workload specs; a snapshot from the older
// fingerprint-keyed schema is ignored with a warning and regenerated.
// Interrupts (SIGINT/SIGTERM) and mid-run errors save a partial snapshot
// of the completed simulations before exiting, so long runs never lose
// finished work. Results are deterministic, so a cache built by an older
// simulator version must be deleted after any behavioural change — the
// golden tests pin when that happens.
//
// -cpuprofile/-memprofile write pprof profiles of the run, the
// performance workflow described in README.md ("Performance").
//
// Runs are deterministic; -n and -warm control sample sizes (the paper
// samples 1M-instruction windows after 4M-instruction warmups; the
// defaults here are scaled down to keep the full suite to a few minutes).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"icfp/cmd/internal/cliutil"
	"icfp/internal/dist"
	"icfp/internal/exp"
	"icfp/internal/exp/registry"
	"icfp/internal/obs"
	"icfp/internal/serve"
	"icfp/internal/sim"
	"icfp/internal/spec"
)

var (
	flagAll         = flag.Bool("all", false, "run every experiment")
	flagList        = flag.Bool("list", false, "list the experiment registry and exit")
	flagDescribe    = flag.String("describe", "", "emit the named experiment as spec.Suite JSON and exit")
	flagSpec        = flag.String("spec", "", "run a suite from this JSON file instead of named experiments ('-' reads stdin)")
	flagN           = flag.Int("n", 400_000, "timed instructions per sample")
	flagWarm        = flag.Int("warm", 150_000, "warmup instructions per sample")
	flagParallel    = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size (results are identical at any setting)")
	flagWorkers     = flag.Int("workers", 0, "shard simulations across N subprocess workers (0 = this process only; results are identical at any setting)")
	flagWorkerStdio = flag.Bool("worker-stdio", false, "serve as a stdio protocol worker (internal: spawned by -workers)")
	flagJSON        = flag.String("json", "", "also write every result set to this file as JSON")
	flagCacheFile   = flag.String("cache-file", "", "load/save the memoization cache from/to this JSON file")
	flagServer      = flag.String("server", "", "submit the selected experiments to a running expq daemon at this base URL instead of simulating locally")
	flagServerToken = flag.String("server-token", "", "bearer token for -server (the daemon's -token)")
	flagServerCA    = flag.String("server-tls-ca", "", "CA certificate file to verify an https -server against")
	flagServerName  = flag.String("server-tls-name", "", "expected TLS server name for -server when it differs from the URL host")
	flagCPUProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	flagMemProfile  = flag.String("memprofile", "", "write a pprof heap profile to this file")
	flagRunSummary  = flag.String("run-summary", "", "write the run's span timeline (per-simulation start/end/worker/elapsed) to this JSON file")

	flagSample         = flag.Bool("sample", false, "run SPEC workloads under interval sampling; results carry 95% confidence intervals")
	flagSampleInterval = flag.Int("sample-interval", 0, "sampled: measured instructions per window (default: scaled to the run length)")
	flagSamplePeriod   = flag.Int("sample-period", 0, "sampled: stratum length between windows (default: a twelfth of the run)")
	flagSampleWarmup   = flag.Int("sample-warmup", 0, "sampled: minimum functionally warmed prefix before the first window")
	flagSampleRamp     = flag.Int("sample-ramp", 0, "sampled: detailed (unmeasured) instructions ahead of each window (default: three intervals)")
	flagSampleSeed     = flag.Int64("sample-seed", 0, "sampled: stratified window placement seed (default 1; 0 via -sample places windows systematically)")
)

// export is the -json file layout: the sample-size parameters and one
// result set per experiment (or suite) run.
type export struct {
	N           int                       `json:"n"`
	Warmup      int                       `json:"warmup"`
	Experiments map[string]*exp.ResultSet `json:"experiments"`
}

// usageError prints the message and the flag usage, then exits 2 — the
// conventional bad-invocation exit code.
func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "experiments:", msg)
	flag.Usage()
	os.Exit(2)
}

func main() {
	all := registry.All()
	sel := make(map[string]*bool, len(all))
	for _, e := range all {
		sel[e.Name] = flag.Bool(e.Name, false, e.Desc)
	}
	flag.Parse()

	if *flagWorkerStdio {
		// Worker mode: speak the protocol on stdin/stdout and nothing
		// else; the coordinator owns every other concern.
		if err := dist.Serve(dist.Stdio()); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: worker:", err)
			os.Exit(1)
		}
		return
	}

	if *flagList {
		for _, e := range all {
			fmt.Printf("%-8s %s\n", e.Name, e.Desc)
		}
		return
	}

	switch {
	case *flagParallel <= 0:
		usageError(fmt.Sprintf("-parallel %d: need at least one pool worker", *flagParallel))
	case *flagWorkers < 0:
		usageError(fmt.Sprintf("-workers %d: need a non-negative worker count", *flagWorkers))
	case *flagN <= 0:
		usageError(fmt.Sprintf("-n %d: need at least one timed instruction", *flagN))
	case *flagWarm < 0:
		usageError(fmt.Sprintf("-warm %d: need a non-negative warmup", *flagWarm))
	case *flagDescribe != "" && *flagSpec != "":
		usageError("-describe and -spec are mutually exclusive")
	}
	// The -sample-* knobs refine -sample; alone they would silently do
	// nothing, so reject the combination.
	if !*flagSample {
		flag.Visit(func(f *flag.Flag) {
			if strings.HasPrefix(f.Name, "sample-") {
				usageError("-" + f.Name + " requires -sample")
			}
		})
	}

	var names []string
	for _, e := range all {
		// Extra experiments (the sampled long-workload variants) run only
		// when named, keeping -all exactly the paper's evaluation.
		if (*flagAll && !e.Extra) || *sel[e.Name] {
			names = append(names, e.Name)
		}
	}

	p := registry.Params{Cfg: sim.DefaultConfig(), N: *flagN}
	p.Cfg.WarmupInsts = *flagWarm
	if *flagSample {
		pol := registry.DefaultSampling(*flagWarm + *flagN)
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "sample-interval":
				pol.Interval = *flagSampleInterval
			case "sample-period":
				pol.Period = *flagSamplePeriod
			case "sample-warmup":
				pol.Warmup = *flagSampleWarmup
			case "sample-ramp":
				pol.Ramp = *flagSampleRamp
			case "sample-seed":
				pol.Seed = *flagSampleSeed
			}
		})
		p.Sampling = pol
	}

	if *flagDescribe != "" {
		if len(names) > 0 {
			usageError("-describe emits one experiment; drop the named experiment flags")
		}
		s, err := registry.Describe(*flagDescribe, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		b, err := s.Marshal()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		os.Stdout.Write(b)
		return
	}

	var suite spec.Suite
	if *flagSpec != "" {
		if len(names) > 0 {
			usageError("-spec runs a suite file; drop the named experiment flags")
		}
		// Sample sizes live in the suite; an explicit -n/-warm here
		// would be silently ignored, so reject the combination.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "n" || f.Name == "warm" {
				usageError("-" + f.Name + " conflicts with -spec: sample sizes come from the suite file")
			}
			if f.Name == "sample" || strings.HasPrefix(f.Name, "sample-") {
				usageError("-" + f.Name + " conflicts with -spec: sampling policies live on the suite file's workloads")
			}
		})
		var err error
		suite, err = loadSuite(*flagSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	} else if len(names) == 0 {
		usageError("no experiments selected")
	}

	if *flagServer != "" {
		// Remote mode: the daemon owns execution, caching, parallelism,
		// and profiling — flags that configure local execution would be
		// silently ignored, so reject them instead.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "workers", "cache-file", "json", "run-summary", "cpuprofile", "memprofile", "parallel":
				usageError("-" + f.Name + " conflicts with -server: execution happens on the daemon")
			}
		})
		if err := runRemote(names, p, suite, *flagSpec != ""); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	// The persistent cache checkpoints completed work on every exit
	// path: SIGINT/SIGTERM (handled inside PersistentCache), mid-run
	// failures (fail below), and the happy path — where a save failure
	// is itself fatal, since a silently missing snapshot would make the
	// next invocation re-simulate everything. Distributed results merge
	// into the cache as they stream in, so even a mid-batch interrupt
	// saves every result already received.
	cache, saveCache, err := cliutil.PersistentCache("experiments", *flagCacheFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		if serr := saveCache(); serr != nil {
			fmt.Fprintln(os.Stderr, "experiments: saving cache:", serr)
		}
		os.Exit(1)
	}

	if *flagCPUProfile != "" {
		f, err := os.Create(*flagCPUProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	var workers []dist.Worker
	if *flagWorkers > 0 {
		if workers, err = spawnWorkers(); err != nil {
			fail(err)
		}
	}

	// The span log records one entry per simulation — local pool workers
	// and dist fleet members alike — when -run-summary asks for the
	// timeline; nil otherwise, and every Add on nil is a no-op.
	var spans *obs.SpanLog
	if *flagRunSummary != "" {
		spans = obs.NewSpanLog()
	}

	sets := make(map[string]*exp.ResultSet)
	exportN, exportWarm := *flagN, *flagWarm
	switch {
	case *flagSpec != "" && *flagWorkers > 0:
		var rs *exp.ResultSet
		rs, err = registry.ReportSuiteDistributed(os.Stdout, suite, workers, perWorkerParallel(), cache, distOptions(spans))
		sets[suite.Name] = rs
		exportN, exportWarm = suite.N, suite.Warm
	case *flagSpec != "":
		var rs *exp.ResultSet
		rs, err = registry.ReportSuite(os.Stdout, suite, exp.Parallelism(*flagParallel), exp.WithCache(cache), exp.WithSpans(spans))
		sets[suite.Name] = rs
		exportN, exportWarm = suite.N, suite.Warm
	case *flagWorkers > 0:
		sets, err = registry.ReportDistributed(os.Stdout, names, p, workers, perWorkerParallel(), cache, distOptions(spans))
	default:
		sets, err = registry.Report(os.Stdout, names, p, exp.Parallelism(*flagParallel), exp.WithCache(cache), exp.WithSpans(spans))
	}
	if err != nil {
		fail(err)
	}

	if *flagRunSummary != "" {
		f, err := os.Create(*flagRunSummary)
		if err != nil {
			fail(err)
		}
		err = spans.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
	}

	// The complete snapshot: failing to persist it is a failed run.
	if err := saveCache(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: saving cache:", err)
		os.Exit(1)
	}

	if *flagMemProfile != "" {
		f, err := os.Create(*flagMemProfile)
		if err != nil {
			fail(err)
		}
		runtime.GC()
		err = pprof.WriteHeapProfile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
	}

	if *flagJSON != "" {
		f, err := os.Create(*flagJSON)
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(export{N: exportN, Warmup: exportWarm, Experiments: sets})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
	}
}

// runRemote submits the selected work to an expq daemon and writes the
// rendered reports to stdout. Each experiment is described as the same
// suite document -describe emits and submitted in selection order, so
// the concatenated output is byte-identical to running the selection
// locally (the describe/spec round trip CI pins, transitively).
func runRemote(names []string, p registry.Params, suite spec.Suite, haveSuite bool) error {
	c, err := serve.NewClient(*flagServer, *flagServerToken, *flagServerCA, *flagServerName)
	if err != nil {
		return err
	}
	submit := func(s spec.Suite) error {
		b, err := s.Marshal()
		if err != nil {
			return err
		}
		out, err := c.Submit(b, nil)
		if err != nil {
			return fmt.Errorf("suite %q: %w", s.Name, err)
		}
		_, err = os.Stdout.Write(out)
		return err
	}
	if haveSuite {
		return submit(suite)
	}
	for _, name := range names {
		s, err := registry.Describe(name, p)
		if err != nil {
			return err
		}
		if err := submit(s); err != nil {
			return err
		}
	}
	return nil
}

// loadSuite reads and strictly decodes a suite file ("-" means stdin).
func loadSuite(path string) (spec.Suite, error) {
	var (
		data []byte
		err  error
	)
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return spec.Suite{}, err
	}
	s, err := spec.UnmarshalSuite(data)
	if err != nil {
		return spec.Suite{}, fmt.Errorf("suite %s: %w", path, err)
	}
	return s, nil
}

// spawnWorkers self-execs -workers subprocess copies of this binary in
// -worker-stdio mode and returns their coordinator-side transports.
// Errors return (never exit) so the caller's failure path still saves
// the cache snapshot.
func spawnWorkers() ([]dist.Worker, error) {
	bin, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locating own binary for worker self-exec: %w", err)
	}
	workers := make([]dist.Worker, 0, *flagWorkers)
	for i := 0; i < *flagWorkers; i++ {
		w, err := dist.Command(fmt.Sprintf("proc %d", i), bin, "-worker-stdio")
		if err != nil {
			dist.CloseAll(workers)
			return nil, err
		}
		workers = append(workers, w)
	}
	return workers, nil
}

// perWorkerParallel splits the -parallel budget across workers (each
// gets the ceiling share, minimum 1).
func perWorkerParallel() int {
	return (*flagParallel + *flagWorkers - 1) / *flagWorkers
}

// distOptions builds the dispatch options shared by both distributed
// paths: structured dispatch events on stderr, plus the run's span log
// (nil when -run-summary is off).
func distOptions(spans *obs.SpanLog) dist.Options {
	return dist.Options{Log: obs.NewLogger(os.Stderr), Spans: spans}
}
