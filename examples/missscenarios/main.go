// Miss scenarios: run the six abstract miss patterns of the paper's
// Figure 1 on all five machines — as one parallel harness run — and print
// the cycle counts. The table makes the paper's qualitative argument
// concrete:
//
//   - (a) lone L2 miss: SLTP/iCFP win by committing the miss-independent
//     tail; Runahead gains nothing (it re-executes everything).
//   - (b) independent L2 misses: every advance design overlaps them.
//   - (c) dependent L2 misses: nobody can overlap them; commit still helps.
//   - (d) independent chains of dependent misses: Runahead and iCFP
//     overlap chain with chain; SLTP's blocking rally serializes.
//   - (e,f) data-cache miss under an L2 miss: iCFP confidently poisons the
//     secondary miss in both cases; Runahead must choose a policy.
package main

import (
	"fmt"
	"os"

	"icfp/internal/exp"
	"icfp/internal/sim"
	"icfp/internal/spec"
	"icfp/internal/workload"
)

func main() {
	cfg := sim.DefaultConfig()
	cfg.WarmupInsts = 0 // scenarios pre-warm their caches explicitly

	var jobs []exp.Job
	for _, sc := range workload.AllScenarios {
		for _, m := range sim.AllModels {
			jobs = append(jobs, sim.Job(string(sc)+"/"+m.String(), m, cfg, spec.ScenarioWorkload(sc)))
		}
	}
	rs, err := exp.Run(jobs) // default parallelism: one worker per CPU
	if err != nil {
		fmt.Fprintln(os.Stderr, "missscenarios:", err)
		os.Exit(1)
	}

	fmt.Printf("%-22s", "scenario")
	for _, m := range sim.AllModels {
		fmt.Printf(" %10s", m)
	}
	fmt.Println(" (cycles)")
	for _, sc := range workload.AllScenarios {
		fmt.Printf("%-22s", sc)
		for _, m := range sim.AllModels {
			fmt.Printf(" %10d", rs.MustGet(string(sc)+"/"+m.String()).Cycles)
		}
		fmt.Println()
	}
}
