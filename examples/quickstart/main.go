// Quickstart: build the Table 1 machine, run one workload on the in-order
// baseline and on iCFP, and print the speedup. This is the minimal use of
// the library's public surface: sim.DefaultConfig, workload.SPEC, sim.Run.
package main

import (
	"fmt"

	"icfp/internal/sim"
	"icfp/internal/workload"
)

func main() {
	cfg := sim.DefaultConfig() // the paper's Table 1 machine

	// A deterministic mcf-profile workload: pointer chasing over a
	// working set larger than the L2, the worst case for an in-order
	// pipeline.
	const timed = 300_000
	w := func() *workload.Workload { return workload.SPEC("mcf", cfg.WarmupInsts+timed) }

	base := sim.Run(sim.InOrder, cfg, w())
	icfp := sim.Run(sim.ICFP, cfg, w())

	fmt.Printf("workload: %s (%d timed instructions)\n", base.Name, base.Insts)
	fmt.Printf("in-order: %8d cycles  IPC %.3f\n", base.Cycles, base.IPC())
	fmt.Printf("iCFP:     %8d cycles  IPC %.3f\n", icfp.Cycles, icfp.IPC())
	fmt.Printf("speedup:  %+.1f%%\n", icfp.SpeedupOver(base))
	fmt.Printf("iCFP rallied %.0f instructions per 1000 committed across %d passes\n",
		icfp.RallyPerKI, icfp.RallyPasses)
}
