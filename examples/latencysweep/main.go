// Latency sweep: reproduce the shape of the paper's Figure 6 on the
// equake profile — the benchmark whose secondary data-cache misses create
// Runahead's "D$-blocking vs D$-non-blocking" dilemma. As the L2 hit
// latency grows, advancing under data-cache misses becomes profitable;
// iCFP advances under every miss at every latency without regret.
//
// The sweeps share one harness cache, so the in-order baseline at each
// latency simulates once and is reused by every machine swept against it.
package main

import (
	"fmt"

	"icfp/internal/exp"
	"icfp/internal/sim"
)

func main() {
	cfg := sim.DefaultConfig()
	lats := []int{10, 20, 30, 40, 50}
	const timed = 250_000

	machines := sim.Figure6Machines()[1:]
	cache := exp.NewCache()

	fmt.Println("equake-profile speedup over in-order vs L2 hit latency")
	fmt.Printf("%-18s", "config")
	for _, l := range lats {
		fmt.Printf(" %7dc", l)
	}
	fmt.Println()
	for _, m := range machines {
		sp := sim.SweepL2LatencyCached(cache, m.Machine, cfg, "equake", timed, lats)
		fmt.Printf("%-18s", m.Label)
		for _, v := range sp {
			fmt.Printf(" %+7.1f%%", v)
		}
		fmt.Println()
	}
	fmt.Printf("(%d simulations for %d cells: each latency's in-order baseline ran once, shared by all %d machines)\n",
		cache.Simulations(), len(machines)*len(lats), len(machines))
}
