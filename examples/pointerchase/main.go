// Pointer chase deep dive: run the mcf profile — dependent miss chains
// over near- and far-resident linked lists — across all five machines and
// print the diagnostics the paper uses to explain them: MLP at both cache
// levels and re-execution (rally) overhead. The ordering the paper argues
// for is visible directly: designs that re-execute everything (Runahead,
// Multipass) pay thousands of re-processed instructions per kilo-
// instruction; iCFP rallies only miss slices, and SLTP's blocking rally
// caps its gain.
package main

import (
	"fmt"

	"icfp/internal/sim"
)

func main() {
	cfg := sim.DefaultConfig()
	const timed = 300_000

	var base int64
	fmt.Printf("%-10s %8s %8s %7s %7s %8s %9s %8s\n",
		"machine", "cycles", "IPC", "dMLP", "l2MLP", "rally/KI", "advances", "speedup")
	for _, m := range sim.AllModels {
		r := sim.RunSPEC(m, cfg, "mcf", timed)
		if m == sim.InOrder {
			base = r.Cycles
		}
		sp := (float64(base)/float64(r.Cycles) - 1) * 100
		fmt.Printf("%-10s %8d %8.3f %7.2f %7.2f %8.0f %9d %+7.1f%%\n",
			m, r.Cycles, r.IPC(), r.DCacheMLP, r.L2MLP, r.RallyPerKI, r.Advances, sp)
	}
	fmt.Println("\nmcf walks a 4 MB list (every hop misses to memory) and a 256 KB list")
	fmt.Println("(every hop misses the D$ but hits the L2); each node's payload feeds")
	fmt.Println("a compare-and-branch, as real list-walking code does.")
}
