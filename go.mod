module icfp

go 1.24
