// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§5). Each benchmark runs the experiment's
// simulations and reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. Sample sizes are scaled down from the
// interactive cmd/experiments defaults to keep the harness fast; run
// cmd/experiments for full-size tables.
package repro

import (
	"fmt"
	"testing"

	"icfp/internal/area"
	"icfp/internal/icfp"
	"icfp/internal/inorder"
	"icfp/internal/pipeline"
	"icfp/internal/sim"
	"icfp/internal/stats"
	"icfp/internal/workload"
)

const (
	benchTimed = 150_000
	benchWarm  = 50_000
)

func benchCfg() pipeline.Config {
	cfg := sim.DefaultConfig()
	cfg.WarmupInsts = benchWarm
	return cfg
}

// geomeanSpeedup runs model over the given benchmarks and returns the
// geometric-mean percent speedup over in-order.
func geomeanSpeedup(m sim.Model, cfg pipeline.Config, names []string) float64 {
	ratios := make([]float64, 0, len(names))
	for _, name := range names {
		base := sim.RunSPEC(sim.InOrder, cfg, name, benchTimed)
		r := sim.RunSPEC(m, cfg, name, benchTimed)
		ratios = append(ratios, float64(base.Cycles)/float64(r.Cycles))
	}
	return (stats.GeoMean(ratios) - 1) * 100
}

// BenchmarkFigure5 regenerates the headline comparison: geometric-mean
// speedup over in-order for each of the four latency-tolerant designs.
// Paper values: Runahead 11%, Multipass 11%, SLTP 9%, iCFP 16%.
func BenchmarkFigure5(b *testing.B) {
	cfg := benchCfg()
	for _, m := range []sim.Model{sim.Runahead, sim.Multipass, sim.SLTP, sim.ICFP} {
		b.Run(m.String(), func(b *testing.B) {
			var geo float64
			for i := 0; i < b.N; i++ {
				geo = geomeanSpeedup(m, cfg, workload.AllSPECNames)
			}
			b.ReportMetric(geo, "speedup%")
		})
	}
}

// BenchmarkTable2 regenerates the diagnostics for three representative
// benchmarks: art (independent misses), swim (streams), mcf (chains).
func BenchmarkTable2(b *testing.B) {
	cfg := benchCfg()
	for _, name := range []string{"art", "swim", "mcf"} {
		b.Run(name, func(b *testing.B) {
			var io, ic pipeline.Result
			for i := 0; i < b.N; i++ {
				io = sim.RunSPEC(sim.InOrder, cfg, name, benchTimed)
				ic = sim.RunSPEC(sim.ICFP, cfg, name, benchTimed)
			}
			b.ReportMetric(io.DCacheMissPerKI, "D$miss/KI")
			b.ReportMetric(io.L2MissPerKI, "L2miss/KI")
			b.ReportMetric(ic.DCacheMLP, "iCFP-dMLP")
			b.ReportMetric(ic.L2MLP, "iCFP-l2MLP")
			b.ReportMetric(ic.RallyPerKI, "rally/KI")
		})
	}
}

// BenchmarkFigure6 regenerates the L2 hit-latency sensitivity sweep on
// the equake profile for the two extreme configurations.
func BenchmarkFigure6(b *testing.B) {
	cfg := benchCfg()
	machines := sim.Figure6Machines()
	for _, m := range []sim.L2LatencyPoint{machines[1], machines[5]} { // RA-L2, iCFP-all
		for _, lat := range []int{10, 50} {
			b.Run(fmt.Sprintf("%s/l2lat=%d", m.Label, lat), func(b *testing.B) {
				var sp []float64
				for i := 0; i < b.N; i++ {
					sp = sim.SweepL2Latency(m.Machine, cfg, "equake", benchTimed, []int{lat})
				}
				b.ReportMetric(sp[0], "speedup%")
			})
		}
	}
}

// BenchmarkFigure7 regenerates the iCFP feature build on mcf, the
// benchmark where non-blocking rallies matter most.
func BenchmarkFigure7(b *testing.B) {
	cfg := benchCfg()
	base := sim.RunSPEC(sim.InOrder, cfg, "mcf", benchTimed)
	for _, build := range sim.FeatureBuildConfigs() {
		b.Run(build.Label, func(b *testing.B) {
			var r pipeline.Result
			for i := 0; i < b.N; i++ {
				r = sim.NewFromSpec(build.Machine, cfg).Run(workload.SPEC("mcf", cfg.WarmupInsts+benchTimed))
			}
			b.ReportMetric(r.SpeedupOver(base), "speedup%")
		})
	}
}

// BenchmarkFigure8 regenerates the store-buffer design comparison on swim.
func BenchmarkFigure8(b *testing.B) {
	cfg := benchCfg()
	base := sim.RunSPEC(sim.InOrder, cfg, "swim", benchTimed)
	for _, sb := range sim.StoreBufferConfigs() {
		b.Run(sb.Label, func(b *testing.B) {
			var r pipeline.Result
			for i := 0; i < b.N; i++ {
				m := sim.NewFromSpec(sb.Machine, cfg)
				r = m.Run(workload.SPEC("swim", cfg.WarmupInsts+benchTimed))
			}
			b.ReportMetric(r.SpeedupOver(base), "speedup%")
			b.ReportMetric(r.SBExtraHops, "extra-hops")
		})
	}
}

// BenchmarkPoisonVectors regenerates the §3.4 poison-width study on mcf.
// Paper: 8 bits gain ~6% over 1 bit on mcf.
func BenchmarkPoisonVectors(b *testing.B) {
	for _, bits := range []int{1, 8} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			cfg := benchCfg()
			cfg.PoisonBits = bits
			var r pipeline.Result
			for i := 0; i < b.N; i++ {
				r = sim.RunSPEC(sim.ICFP, cfg, "mcf", benchTimed)
			}
			b.ReportMetric(float64(r.Cycles), "cycles")
		})
	}
}

// BenchmarkAreaModel regenerates the §5.3 overhead estimates.
func BenchmarkAreaModel(b *testing.B) {
	for _, d := range area.AllDesigns() {
		b.Run(d.Name, func(b *testing.B) {
			var mm2 float64
			for i := 0; i < b.N; i++ {
				mm2 = d.Total()
			}
			b.ReportMetric(mm2*1000, "mm2/1000")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (simulated
// instructions per second) for the heaviest machine, as an engineering
// figure of merit for the harness itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := benchCfg()
	w := workload.SPEC("equake", cfg.WarmupInsts+benchTimed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := sim.Run(sim.ICFP, cfg, w)
		b.SetBytes(r.Insts) // "bytes" = simulated instructions
	}
}

// BenchmarkScenarios runs the six Figure 1 micro-scenarios on iCFP.
func BenchmarkScenarios(b *testing.B) {
	cfg := pipeline.DefaultConfig()
	for _, sc := range workload.AllScenarios {
		b.Run(string(sc), func(b *testing.B) {
			var r pipeline.Result
			for i := 0; i < b.N; i++ {
				r = icfp.New(cfg).Run(workload.NewScenario(sc))
			}
			b.ReportMetric(float64(r.Cycles), "cycles")
		})
	}
}

// TestEvaluationShape is the integration test of the reproduction: the
// qualitative claims of §5 must hold on the synthetic suite.
func TestEvaluationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite integration test")
	}
	cfg := benchCfg()
	geo := map[sim.Model]float64{}
	for _, m := range []sim.Model{sim.Runahead, sim.Multipass, sim.SLTP, sim.ICFP} {
		geo[m] = geomeanSpeedup(m, cfg, workload.AllSPECNames)
	}
	t.Logf("geomean speedups: RA %+.1f%% MP %+.1f%% SLTP %+.1f%% iCFP %+.1f%%",
		geo[sim.Runahead], geo[sim.Multipass], geo[sim.SLTP], geo[sim.ICFP])

	// Claim 1: iCFP out-performs Runahead, Multipass and SLTP on average.
	for _, m := range []sim.Model{sim.Runahead, sim.Multipass, sim.SLTP} {
		if geo[sim.ICFP] <= geo[m] {
			t.Errorf("iCFP geomean %.1f%% must beat %s %.1f%%", geo[sim.ICFP], m, geo[m])
		}
	}
	// Claim 2: every design helps on average (positive geomeans).
	for m, g := range geo {
		if g < 0 {
			t.Errorf("%s geomean %.1f%% must be positive", m, g)
		}
	}
	// Claim 3: high-miss benchmarks see speedups of 40%+ under iCFP.
	for _, name := range []string{"ammp", "art"} {
		base := sim.RunSPEC(sim.InOrder, cfg, name, benchTimed)
		ic := sim.RunSPEC(sim.ICFP, cfg, name, benchTimed)
		if sp := ic.SpeedupOver(base); sp < 40 {
			t.Errorf("%s iCFP speedup %.1f%%, paper reports 40%%+", name, sp)
		}
	}
}

// TestInOrderBaselineSanity pins the baseline's character: a low-miss
// benchmark runs near the machine's width-limited IPC, a memory-bound one
// runs far below it.
func TestInOrderBaselineSanity(t *testing.T) {
	cfg := benchCfg()
	mesa := inorder.New(cfg).Run(workload.SPEC("mesa", cfg.WarmupInsts+benchTimed))
	mcf := inorder.New(cfg).Run(workload.SPEC("mcf", cfg.WarmupInsts+benchTimed))
	if mesa.IPC() < 0.8 {
		t.Errorf("mesa in-order IPC %.2f too low", mesa.IPC())
	}
	if mcf.IPC() > 0.2 {
		t.Errorf("mcf in-order IPC %.2f too high for a chase-bound workload", mcf.IPC())
	}
}
